package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestNewDifferentSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestSplitIndependentAndStable(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Split not stable for the same id")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("Split streams for different ids collide immediately")
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 8 {
		t.Fatalf("zero-seeded generator looks degenerate: %d distinct in 10 draws", len(seen))
	}
}

func TestInt63nRange(t *testing.T) {
	r := New(3)
	for _, n := range []int64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(1).Int63n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(5)
	for i := 0; i < 50; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(6)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", rate)
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	for _, beta := range []float64{0.5, 1, 4} {
		sum := 0.0
		const trials = 200000
		for i := 0; i < trials; i++ {
			sum += r.Exp(beta)
		}
		mean := sum / trials
		want := 1 / beta
		if math.Abs(mean-want) > 0.05*want {
			t.Fatalf("Exp(%v) mean %v want %v", beta, mean, want)
		}
	}
}

func TestExpPositive(t *testing.T) {
	r := New(12)
	for i := 0; i < 10000; i++ {
		if v := r.Exp(2); v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestCoinDeterministic(t *testing.T) {
	for i := uint64(0); i < 100; i++ {
		a := Coin(0.5, 1, 2, i)
		b := Coin(0.5, 1, 2, i)
		if a != b {
			t.Fatal("Coin not deterministic")
		}
	}
}

func TestCoinRate(t *testing.T) {
	const trials = 100000
	hits := 0
	for i := uint64(0); i < trials; i++ {
		if Coin(0.25, 99, i) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("Coin(0.25) empirical rate %v", rate)
	}
}

func TestCoinKeySensitivity(t *testing.T) {
	// Different rounds must yield different coin outcomes for some nodes.
	diff := 0
	for i := uint64(0); i < 1000; i++ {
		if Coin(0.5, 1, 0, i) != Coin(0.5, 1, 1, i) {
			diff++
		}
	}
	if diff < 300 {
		t.Fatalf("coins for different rounds suspiciously correlated: %d/1000 differ", diff)
	}
}

func TestUniformRange(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		u := Uniform(42, i)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform out of range: %v", u)
		}
	}
}

func TestExpAtMean(t *testing.T) {
	sum := 0.0
	const trials = 200000
	for i := uint64(0); i < trials; i++ {
		sum += ExpAt(2.0, 7, i)
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("ExpAt(2) mean %v want 0.5", mean)
	}
}

func TestSortableFloat32BitsOrder(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		ba, bb := SortableFloat32Bits(a), SortableFloat32Bits(b)
		switch {
		case a < b:
			return ba < bb
		case a > b:
			return ba > bb
		default:
			// +0 and -0 compare equal as floats but may map to
			// different bit patterns; accept either order.
			return a == b
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSortableFloat32BitsRoundTrip(t *testing.T) {
	f := func(a float32) bool {
		if math.IsNaN(float64(a)) {
			return true
		}
		return FromSortableFloat32Bits(SortableFloat32Bits(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		seen[Mix64(1, i)] = true
	}
	if len(seen) != 10000 {
		t.Fatalf("Mix64 collisions: %d distinct of 10000", len(seen))
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkCoin(b *testing.B) {
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = Coin(0.5, 1, uint64(i))
	}
	_ = sink
}
