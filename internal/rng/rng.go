// Package rng provides deterministic, splittable pseudo-random number
// generation for the randomized algorithms in this repository.
//
// All algorithms in the paper (CLUSTER, CLUSTER2, MPX, HADI) are randomized.
// To make experiments reproducible regardless of goroutine scheduling, the
// package offers two styles of generation:
//
//   - A sequential generator (RNG, xoshiro256**) seeded via SplitMix64, for
//     places where a single goroutine draws a stream of values.
//   - Stateless hash-based coins (Coin, Uniform, Exp) keyed by
//     (seed, round, node), so that per-node random decisions made
//     concurrently by many workers are identical across runs and across
//     worker counts.
package rng

import "math"

// SplitMix64 advances the given state and returns the next 64-bit value of
// the SplitMix64 sequence. It is used both to seed xoshiro and as the core
// of the stateless hash-based coins.
func SplitMix64(state uint64) uint64 {
	z := state + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes an arbitrary sequence of 64-bit words into a single
// well-distributed 64-bit value. It chains SplitMix64 finalizers, which is
// sufficient for statistical (non-cryptographic) use.
func Mix64(words ...uint64) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, w := range words {
		h = SplitMix64(h ^ w)
	}
	return h
}

// RNG is a xoshiro256** generator. The zero value is invalid; construct with
// New. RNG is not safe for concurrent use; give each worker its own stream
// via Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	state := seed
	for i := range r.s {
		state = SplitMix64(state)
		r.s[i] = state
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent generator from this one, keyed by id. The
// parent's state is not advanced, so Split(i) is stable for a given parent
// seed: workers can be re-created with the same ids across runs.
func (r *RNG) Split(id uint64) *RNG {
	return New(Mix64(r.s[0], r.s[1], r.s[2], r.s[3], id))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** sequence.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	// Rejection sampling over the top bits to avoid modulo bias.
	max := uint64(math.MaxUint64 - math.MaxUint64%uint64(n))
	for {
		v := r.Uint64()
		if v < max {
			return int64(v % uint64(n))
		}
	}
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with rate beta
// (mean 1/beta), as used by the MPX decomposition.
func (r *RNG) Exp(beta float64) float64 {
	if beta <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / beta
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// --- Stateless hash-based primitives ----------------------------------------
//
// These make per-node random decisions independent of evaluation order:
// every worker computing Coin(seed, round, node, p) gets the same answer.

// Uniform returns a uniform float64 in [0, 1) keyed by the given words.
func Uniform(words ...uint64) float64 {
	return float64(Mix64(words...)>>11) * (1.0 / (1 << 53))
}

// Coin returns true with probability p, keyed by the given words.
func Coin(p float64, words ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return Uniform(words...) < p
}

// ExpAt returns an Exp(beta) variate keyed by the given words.
func ExpAt(beta float64, words ...uint64) float64 {
	u := Uniform(words...)
	if u == 0 {
		u = 0.5 / (1 << 53)
	}
	return -math.Log(u) / beta
}

// SortableFloat32Bits maps a float32 to a uint32 whose unsigned ordering
// matches the ordering of the floats (including negatives). It is used to
// pack (priority, clusterID) pairs into a single uint64 for atomic
// max-claims in the MPX decomposition.
func SortableFloat32Bits(f float32) uint32 {
	b := math.Float32bits(f)
	if b&0x8000_0000 != 0 {
		return ^b
	}
	return b | 0x8000_0000
}

// FromSortableFloat32Bits inverts SortableFloat32Bits.
func FromSortableFloat32Bits(b uint32) float32 {
	if b&0x8000_0000 != 0 {
		return math.Float32frombits(b & 0x7fff_ffff)
	}
	return math.Float32frombits(^b)
}
