// Package quotient builds the quotient (cluster) graphs of Section 4: the
// nodes of the quotient graph are the clusters of a decomposition, and two
// clusters are adjacent iff some edge of G crosses between them.
//
// The weighted variant assigns each quotient edge the length of the
// shortest center-to-center path that uses only nodes of the two incident
// clusters, estimated as min over crossing edges (a, b) of
// Dist[a] + 1 + Dist[b] where Dist is the growth distance to the cluster
// center. This is the refinement (following Meyer's external-memory
// algorithm [21]) that the paper uses to compute the tighter upper bound
// ∆″ = 2·R + ∆′C in its experiments.
package quotient

import (
	"fmt"

	"repro/internal/graph"
)

// Build returns the unweighted quotient graph for the clustering described
// by owner (cluster index per node, all in [0, k)).
func Build(g *graph.Graph, owner []graph.NodeID, k int) (*graph.Graph, error) {
	if len(owner) != g.NumNodes() {
		return nil, fmt.Errorf("quotient: owner length %d, graph has %d nodes", len(owner), g.NumNodes())
	}
	b := graph.NewBuilder(k)
	var err error
	g.Edges(func(u, v graph.NodeID) bool {
		cu, cv := owner[u], owner[v]
		if cu < 0 || cv < 0 || int(cu) >= k || int(cv) >= k {
			err = fmt.Errorf("quotient: node with invalid cluster (%d or %d of %d)", cu, cv, k)
			return false
		}
		if cu != cv {
			b.AddEdge(cu, cv)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// BuildWeighted returns both the unweighted quotient graph and its weighted
// variant, where each quotient edge {cu, cv} carries
// min over crossing edges (a,b) of Dist[a]+1+Dist[b].
func BuildWeighted(g *graph.Graph, owner []graph.NodeID, dist []int32, k int) (*graph.Graph, *graph.Weighted, error) {
	if len(owner) != g.NumNodes() || len(dist) != g.NumNodes() {
		return nil, nil, fmt.Errorf("quotient: owner/dist length mismatch (n=%d)", g.NumNodes())
	}
	minW := make(map[uint64]int32)
	var err error
	g.Edges(func(u, v graph.NodeID) bool {
		cu, cv := owner[u], owner[v]
		if cu < 0 || cv < 0 || int(cu) >= k || int(cv) >= k {
			err = fmt.Errorf("quotient: node with invalid cluster (%d or %d of %d)", cu, cv, k)
			return false
		}
		if cu == cv {
			return true
		}
		w := dist[u] + 1 + dist[v]
		key := pairKey(cu, cv)
		if cur, ok := minW[key]; !ok || w < cur {
			minW[key] = w
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	edges := make([][2]graph.NodeID, 0, len(minW))
	weights := make([]int32, 0, len(minW))
	ub := graph.NewBuilder(k)
	for key, w := range minW {
		cu, cv := unpairKey(key)
		edges = append(edges, [2]graph.NodeID{cu, cv})
		weights = append(weights, w)
		ub.AddEdge(cu, cv)
	}
	wq, err := graph.NewWeighted(k, edges, weights)
	if err != nil {
		return nil, nil, fmt.Errorf("quotient: %w", err)
	}
	return ub.Build(), wq, nil
}

func pairKey(a, b graph.NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func unpairKey(key uint64) (graph.NodeID, graph.NodeID) {
	return graph.NodeID(key >> 32), graph.NodeID(uint32(key))
}
