package quotient_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/quotient"
)

func clusterOf(t *testing.T, g *graph.Graph, tau int) *core.Clustering {
	t.Helper()
	cl, err := core.Cluster(g, tau, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestBuildBasic(t *testing.T) {
	// Path 0-1-2-3 with clusters {0,1} and {2,3}: quotient is a single edge.
	g := graph.Path(4)
	owner := []graph.NodeID{0, 0, 1, 1}
	q, err := quotient.Build(g, owner, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != 2 || q.NumEdges() != 1 {
		t.Fatalf("quotient n=%d m=%d want 2,1", q.NumNodes(), q.NumEdges())
	}
}

func TestBuildNoSelfLoops(t *testing.T) {
	g := graph.Complete(5)
	owner := []graph.NodeID{0, 0, 0, 0, 0}
	q, err := quotient.Build(g, owner, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumEdges() != 0 {
		t.Fatal("intra-cluster edges must not appear in the quotient")
	}
}

func TestBuildInvalidOwner(t *testing.T) {
	g := graph.Path(3)
	if _, err := quotient.Build(g, []graph.NodeID{0, 5, 0}, 2); err == nil {
		t.Fatal("out-of-range owner should fail")
	}
	if _, err := quotient.Build(g, []graph.NodeID{0, 0}, 1); err == nil {
		t.Fatal("short owner slice should fail")
	}
}

func TestBuildWeightedWeights(t *testing.T) {
	// Path 0-1-2-3-4-5; clusters A={0,1,2} centered at 0, B={3,4,5}
	// centered at 5. The only crossing edge is (2,3):
	// weight = dist[2] + 1 + dist[3] = 2 + 1 + 2 = 5.
	g := graph.Path(6)
	owner := []graph.NodeID{0, 0, 0, 1, 1, 1}
	dist := []int32{0, 1, 2, 2, 1, 0}
	q, wq, err := quotient.BuildWeighted(g, owner, dist, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumEdges() != 1 || wq.NumEdges() != 1 {
		t.Fatal("expected a single quotient edge")
	}
	if d := wq.Dijkstra(0)[1]; d != 5 {
		t.Fatalf("quotient weight %d want 5", d)
	}
}

func TestBuildWeightedTakesMinCrossingEdge(t *testing.T) {
	// Two clusters joined by two crossing edges with different depth sums.
	//    0 - 1   cluster 0: {0 (center), 1}
	//    |   |
	//    2 - 3   cluster 1: {2 (center), 3}
	g := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	owner := []graph.NodeID{0, 0, 1, 1}
	dist := []int32{0, 1, 0, 1}
	_, wq, err := quotient.BuildWeighted(g, owner, dist, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Crossing edges: (0,2) weight 0+1+0=1 and (1,3) weight 1+1+1=3.
	if d := wq.Dijkstra(0)[1]; d != 1 {
		t.Fatalf("min crossing weight %d want 1", d)
	}
}

func TestQuotientDiameterLowerBoundsGraphDiameter(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Mesh(30, 30),
		graph.RoadLike(25, 25, 0.4, 2),
		graph.BarabasiAlbert(1500, 3, 3),
	} {
		cl := clusterOf(t, g, 4)
		q, err := quotient.Build(g, cl.Owner, cl.NumClusters())
		if err != nil {
			t.Fatal(err)
		}
		qd, exact := q.ExactDiameter(0)
		if !exact {
			t.Fatal("quotient diameter not exact")
		}
		gd, _ := g.ExactDiameter(0)
		if int64(qd) > int64(gd) {
			t.Fatalf("quotient diameter %d exceeds graph diameter %d", qd, gd)
		}
	}
}

func TestQuotientConnectedWhenGraphConnected(t *testing.T) {
	g := graph.Mesh(25, 25)
	cl := clusterOf(t, g, 8)
	q, err := quotient.Build(g, cl.Owner, cl.NumClusters())
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsConnected() {
		t.Fatal("quotient of a connected graph must be connected")
	}
}

func TestBuildWeightedUnweightedTopologiesAgree(t *testing.T) {
	g := graph.RoadLike(20, 20, 0.5, 7)
	cl := clusterOf(t, g, 4)
	q1, err := quotient.Build(g, cl.Owner, cl.NumClusters())
	if err != nil {
		t.Fatal(err)
	}
	q2, wq, err := quotient.BuildWeighted(g, cl.Owner, cl.Dist, cl.NumClusters())
	if err != nil {
		t.Fatal(err)
	}
	if q1.NumEdges() != q2.NumEdges() || q1.NumEdges() != wq.NumEdges() {
		t.Fatalf("edge counts disagree: %d %d %d", q1.NumEdges(), q2.NumEdges(), wq.NumEdges())
	}
}
