// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's Section 6 evaluation, plus ablation benches for the design knobs
// (τ granularity, worker scaling, CLUSTER vs CLUSTER2) and a serving-layer
// bench for the query daemon's hot path (see README.md).
//
// The benches run the same code paths as cmd/tables at a reduced scale so
// `go test -bench=. -benchmem` finishes in minutes; run cmd/tables with
// -scale 1 (or higher) for the full-scale numbers.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
	"repro/internal/anf"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/graph"
	"repro/internal/mpx"
	"repro/internal/mr"
	"repro/internal/pbfs"
	"repro/internal/quotient"
	"repro/internal/rng"
)

// benchCfg keeps per-iteration work around a second per dataset.
var benchCfg = expt.Config{Scale: 0.25, Seed: 42}

// Shared graphs for the ablation benches, built once.
var (
	benchOnce   sync.Once
	benchMesh   *graph.Graph // long diameter
	benchSocial *graph.Graph // short diameter
	benchRoad   *graph.Graph
)

func benchGraphs() (*graph.Graph, *graph.Graph, *graph.Graph) {
	benchOnce.Do(func() {
		benchMesh = graph.Mesh(150, 150)
		benchSocial = graph.BarabasiAlbert(30000, 8, 7)
		benchRoad = graph.RoadLike(130, 130, 0.4, 9)
	})
	return benchMesh, benchSocial, benchRoad
}

// --- Table 1: dataset construction and characterization ---

func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table1(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: CLUSTER vs MPX decomposition quality ---

func BenchmarkTable2ClusterVsMPX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table2(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: diameter approximation quality at two granularities ---

func BenchmarkTable3DiameterQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table3(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 4: estimator comparison, one bench per competitor so their
// costs are individually visible (the table's whole point) ---

func BenchmarkTable4Cluster(b *testing.B) {
	mesh, _, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.ClusterCost(benchCfg, mesh, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4BFS(b *testing.B) {
	mesh, _, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.BFSCost(benchCfg, mesh); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4HADI(b *testing.B) {
	mesh, _, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.HADICost(benchCfg, mesh); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4FullTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table4(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1: tail experiment, separate benches for the flat (CLUSTER)
// and linear (BFS) curves at the largest tail factor ---

func BenchmarkFigure1TailCluster(b *testing.B) {
	_, social, _ := benchGraphs()
	_, diam := social.TwoSweep(0)
	g := graph.AppendTail(social, 0, 10*int(diam))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.ClusterCost(benchCfg, g, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1TailBFS(b *testing.B) {
	_, social, _ := benchGraphs()
	_, diam := social.TwoSweep(0)
	g := graph.AppendTail(social, 0, 10*int(diam))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.BFSCost(benchCfg, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1Series(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Figure1(benchCfg, []int{0, 4, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 5 validation: growth step + repeated squaring on the MR
// simulator ---

func BenchmarkMRGrowStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.MRModel(expt.Config{Scale: 0.4, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMRCluster sweeps the sharded MR runtime across reducer shard
// counts on the full CLUSTER(τ) pipeline (selection rounds + growth
// rounds). Results are bit-identical across shards — the sweep measures
// pure runtime scaling — and pairs-shuffled/op reports the shuffle volume
// the model charges, which the determinism guarantee keeps constant.
func BenchmarkMRCluster(b *testing.B) {
	g := graph.Mesh(60, 60)
	for _, shards := range []int{1, 4, 8} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			var shuffled int64
			for i := 0; i < b.N; i++ {
				e := mr.NewEngine(mr.Config{Shards: shards})
				if _, _, err := e.Cluster(g, 16, 1); err != nil {
					b.Fatal(err)
				}
				shuffled = e.TotalShuffled()
				e.Close()
			}
			b.ReportMetric(float64(shuffled), "pairs-shuffled")
		})
	}
}

// BenchmarkMRSquaring sweeps shard counts on the Theorem 4 path: repeated
// min-plus squaring of a weighted quotient-sized matrix, whose Θ(ℓ³)-pair
// join rounds are the heaviest shuffles the engine runs.
func BenchmarkMRSquaring(b *testing.B) {
	g := graph.RoadLike(8, 8, 0.5, 4)
	edges := g.EdgeList()
	r := rng.New(9)
	ws := make([]int32, len(edges))
	for i := range ws {
		ws[i] = int32(1 + r.Intn(50))
	}
	w := graph.MustWeighted(g.NumNodes(), edges, ws)
	for _, shards := range []int{1, 4, 8} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			var shuffled int64
			for i := 0; i < b.N; i++ {
				e := mr.NewEngine(mr.Config{Shards: shards})
				if _, err := e.DiameterByRepeatedSquaring(w); err != nil {
					b.Fatal(err)
				}
				shuffled = e.TotalShuffled()
				e.Close()
			}
			b.ReportMetric(float64(shuffled), "pairs-shuffled")
		})
	}
}

// --- Ablations ---

// Granularity: radius/rounds trade-off of τ (Lemma 1's ∆/τ^(1/b) behavior).
func BenchmarkAblationClusterTau(b *testing.B) {
	mesh, _, _ := benchGraphs()
	for _, tau := range []int{1, 4, 16, 64} {
		b.Run(benchName("tau", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cl, err := core.Cluster(mesh, tau, core.Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cl.MaxRadius()), "radius")
				b.ReportMetric(float64(cl.GrowthSteps), "rounds")
			}
		})
	}
}

// Worker scaling of the BSP substrate.
func BenchmarkAblationClusterWorkers(b *testing.B) {
	_, social, _ := benchGraphs()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Cluster(social, 16, core.Options{Seed: 1, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// CLUSTER vs CLUSTER2: the cost of the theory-faithful variant.
func BenchmarkAblationCluster2(b *testing.B) {
	_, _, road := benchGraphs()
	b.Run("cluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Cluster(road, 8, core.Options{Seed: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cluster2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Cluster2(road, 8, core.Options{Seed: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Raw decomposition throughput of the two decomposition algorithms.
func BenchmarkAblationDecomposers(b *testing.B) {
	mesh, _, _ := benchGraphs()
	b.Run("cluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Cluster(mesh, 16, core.Options{Seed: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mpx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mpx.Decompose(mesh, mpx.Options{Beta: 0.3, Seed: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Engine modes: forced top-down vs the hybrid direction-optimizing
// traversal, on the two diameter regimes. The mesh (high diameter, thin
// frontiers) should show parity — the hybrid stays top-down — while the
// G(n, p) graph (low diameter, exploding frontiers) is where bottom-up
// rounds cut the arcs scanned by several x. Each sub-bench reports the
// arcs-scanned Stats.Messages of one full BFS alongside ns/op.
func BenchmarkEngineModesBFS(b *testing.B) {
	mesh, _, _ := benchGraphs()
	gnp := graph.ErdosRenyi(50000, 500000, 3)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"mesh", mesh}, {"gnp", gnp}} {
		for _, mode := range []struct {
			name string
			dir  bsp.Direction
		}{{"topdown", bsp.DirPush}, {"hybrid", bsp.DirAuto}} {
			b.Run(tc.name+"/"+mode.name, func(b *testing.B) {
				var arcs int64
				for i := 0; i < b.N; i++ {
					res, err := pbfs.RunDirection(tc.g, 0, 0, mode.dir)
					if err != nil {
						b.Fatal(err)
					}
					arcs = res.Stats.Messages
				}
				b.ReportMetric(float64(arcs), "arcs")
			})
		}
	}
}

// The same comparison for the CLUSTER decomposition, whose growth phase
// saturates the graph and therefore benefits from bottom-up rounds once
// the combined cluster frontier dominates the uncovered remainder.
func BenchmarkEngineModesCluster(b *testing.B) {
	gnp := graph.ErdosRenyi(50000, 500000, 3)
	for _, mode := range []struct {
		name string
		dir  bsp.Direction
	}{{"topdown", bsp.DirPush}, {"hybrid", bsp.DirAuto}} {
		b.Run(mode.name, func(b *testing.B) {
			var arcs int64
			for i := 0; i < b.N; i++ {
				cl, err := core.Cluster(gnp, 16, core.Options{Seed: 1, Direction: mode.dir})
				if err != nil {
					b.Fatal(err)
				}
				arcs = cl.Stats.Messages
			}
			b.ReportMetric(float64(arcs), "arcs")
		})
	}
}

// BenchmarkEngineObserver prices the progress-hook seam itself: the nil
// case is the default everyone but /builds runs (one predicate per barrier,
// no delta materialized) and must show parity with the pre-hook engine —
// BenchmarkEngineModesBFS measures that same nil path end to end — while
// the counting case is the full serve-tier wiring (snapshot, subtract,
// callback) and bounds what a /metrics-instrumented build pays per barrier.
func BenchmarkEngineObserver(b *testing.B) {
	mesh, _, _ := benchGraphs()
	var sink atomic.Int64
	for _, tc := range []struct {
		name string
		obs  bsp.Observer
	}{
		{"nil", nil},
		{"counting", func(d bsp.Stats) { sink.Add(d.Messages) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Cluster(mesh, 16, core.Options{Seed: 1, Observer: tc.obs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Weighted layer: parallel delta-stepping vs the sequential seed path ---

// Shared weighted instance at the acceptance scale: G(20k, 100k) with
// weights uniform in [1, 100].
var (
	benchWeightedOnce sync.Once
	benchWeightedGnp  *graph.Weighted
	benchWeightedBase *graph.Graph
)

func benchWeighted() (*graph.Graph, *graph.Weighted) {
	benchWeightedOnce.Do(func() {
		benchWeightedBase = graph.ErdosRenyi(20000, 100000, 11)
		edges := benchWeightedBase.EdgeList()
		r := rng.New(13)
		ws := make([]int32, len(edges))
		for i := range ws {
			ws[i] = int32(1 + r.Intn(100))
		}
		benchWeightedGnp = graph.MustWeighted(benchWeightedBase.NumNodes(), edges, ws)
	})
	return benchWeightedBase, benchWeightedGnp
}

// BenchmarkWeightedClusterModes scales the delta-stepping growth across
// worker counts (workers=1 is the sequential baseline — the same bucketed
// relaxations Dijkstra's priority queue would perform, minus the heap).
// Relaxations/op and buckets/op report the honest weighted work alongside
// ns/op, the way arcs does for the unweighted engine benches.
func BenchmarkWeightedClusterModes(b *testing.B) {
	_, wg := benchWeighted()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", w), func(b *testing.B) {
			var st bsp.Stats
			for i := 0; i < b.N; i++ {
				wc, err := core.WeightedCluster(wg, 16, core.Options{Seed: 1, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				st = wc.Stats
			}
			b.ReportMetric(float64(st.Relaxations), "relaxations")
			b.ReportMetric(float64(st.Buckets), "buckets")
		})
	}
}

// BenchmarkOracleBuild compares the oracle's quotient APSP stage: the seed
// path (one sequential binary-heap Dijkstra plus one BFS per cluster, run
// back to back) against the delta-stepping build with source-level fan-out.
// The decomposition is shared and built outside the timer, so the numbers
// isolate exactly the stage this PR parallelizes.
func BenchmarkOracleBuild(b *testing.B) {
	g, _ := benchWeighted()
	cl, err := core.Cluster(g, 8, core.Options{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	k := cl.NumClusters()
	b.Run("dijkstra-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q, wq, err := quotient.BuildWeighted(cl.G, cl.Owner, cl.Dist, k)
			if err != nil {
				b.Fatal(err)
			}
			for c := 0; c < k; c++ {
				_ = wq.Dijkstra(graph.NodeID(c))
				_ = q.BFS(graph.NodeID(c))
			}
		}
	})
	for _, w := range []int{1, 8} {
		b.Run("delta/"+benchName("workers", w), func(b *testing.B) {
			var st bsp.Stats
			for i := 0; i < b.N; i++ {
				o, err := core.OracleFromClustering(context.Background(), cl, core.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				st = o.APSPStats()
			}
			b.ReportMetric(float64(st.Relaxations), "relaxations")
		})
	}
}

// Baseline estimator kernels in isolation.
func BenchmarkKernelPBFS(b *testing.B) {
	mesh, _, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pbfs.Run(mesh, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelANF(b *testing.B) {
	_, social, _ := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := anf.Run(social, anf.Options{K: 32, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Public facade end-to-end.
func BenchmarkFacadeApproxDiameter(b *testing.B) {
	_, _, road := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.ApproxDiameter(road, repro.DiameterOptions{
			Options: repro.Options{Seed: 4},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacadeKCenter(b *testing.B) {
	_, _, road := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.KCenter(road, 40, repro.Options{Seed: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving layer: the query daemon's hot path ---

// BenchmarkServeDistance measures end-to-end /distance latency — HTTP,
// JSON, worker pool, cache hit, O(1) oracle lookup — under parallel
// clients, the production shape of cmd/reprod.
func BenchmarkServeDistance(b *testing.B) {
	_, _, road := benchGraphs()
	s := repro.NewServer(repro.ServeConfig{Workers: 64})
	if err := s.RegisterGraph("road", road); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Build the oracle outside the timed region.
	if _, err := s.Oracle(context.Background(), "road", 4, 1, ""); err != nil {
		b.Fatal(err)
	}
	n := road.NumNodes()
	var clientID atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Distinct per-goroutine seeds: identical streams would make the
		// parallel clients replay the same queries in lockstep.
		r := rng.New(clientID.Add(1))
		client := ts.Client()
		for pb.Next() {
			u := r.Intn(n)
			v := r.Intn(n)
			resp, err := client.Get(fmt.Sprintf("%s/distance?graph=road&tau=4&seed=1&u=%d&v=%d", ts.URL, u, v))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}

// BenchmarkServeOracleQuery isolates the oracle lookup the endpoint wraps,
// for comparison with the full HTTP round trip above.
func BenchmarkServeOracleQuery(b *testing.B) {
	_, _, road := benchGraphs()
	o, err := core.BuildOracle(context.Background(), road, 4, false, core.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	n := road.NumNodes()
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		_ = o.Query(u, v)
	}
}

func benchName(k string, v int) string {
	return fmt.Sprintf("%s=%d", k, v)
}
