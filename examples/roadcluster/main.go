// Road-network decomposition and k-center: the long-diameter regime where
// the paper's algorithm wins by orders of magnitude. Decomposes a road-like
// graph at several granularities, compares the radii with the MPX baseline
// (the paper's Table 2 comparison), and places k facility centers.
//
// Run with:
//
//	go run ./examples/roadcluster
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A perturbed 400x400 grid standing in for a road network: 160,000
	// nodes, bounded degree, diameter around a thousand.
	g := repro.RoadLike(400, 400, 0.4, 11)
	fmt.Printf("road network: n=%d m=%d\n", g.NumNodes(), g.NumEdges())

	// Decompose at increasing granularity: the max radius shrinks roughly
	// like ∆/τ^(1/2) on a 2-dimensional network (Lemma 1 with b=2).
	for _, tau := range []int{1, 4, 16, 64} {
		cl, err := repro.Cluster(g, tau, repro.Options{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CLUSTER(%-2d): %5d clusters, max radius %4d, %4d rounds\n",
			tau, cl.NumClusters(), cl.MaxRadius(), cl.GrowthSteps)
	}

	// MPX comparison at matched granularity: sweep beta until MPX returns
	// a comparable cluster count (the fair comparison the paper's Table 2
	// makes — more clusters trivially means smaller radii).
	cl, err := repro.Cluster(g, 16, repro.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	beta, m := 0.02, (*repro.Clustering)(nil)
	for ; beta < 64; beta *= 2 {
		m, err = repro.MPXDecompose(g, repro.MPXOptions{Beta: beta, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		if m.NumClusters() >= cl.NumClusters() {
			break
		}
	}
	fmt.Printf("\nradius comparison at matched granularity:\n")
	fmt.Printf("  CLUSTER: radius %3d (%d clusters)\n", cl.MaxRadius(), cl.NumClusters())
	fmt.Printf("  MPX:     radius %3d (%d clusters, beta=%.2f)\n", m.MaxRadius(), m.NumClusters(), beta)

	// k-center: place 50 facility centers so the farthest intersection is
	// as close as possible; compare with the sequential 2-approximation.
	res, err := repro.KCenter(g, 50, repro.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	_, base, err := repro.GonzalezKCenter(g, 50, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk-center (k=50): CLUSTER radius %d vs Gonzalez %d (ratio %.2f)\n",
		res.Radius, base, float64(res.Radius)/float64(base))
}
