// Approximate distance oracle: build the linear-space oracle sketched at
// the end of the paper's Section 4 and answer point-to-point distance
// queries in constant time, comparing against exact BFS distances.
//
// Run with:
//
//	go run ./examples/oracle
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/rng"
)

func main() {
	g := repro.RoadLike(250, 250, 0.4, 5)
	fmt.Printf("graph: n=%d m=%d\n", g.NumNodes(), g.NumEdges())

	// τ controls the space/accuracy trade-off: the oracle stores the APSP
	// matrix of the quotient graph, so the number of clusters (O(τ·log²n))
	// squared must stay manageable.
	oracle, err := repro.BuildOracle(g, 2, false, repro.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle over %d clusters (max radius %d)\n",
		oracle.NumClusters(), oracle.Clustering().MaxRadius())

	r := rng.New(123)
	fmt.Println("\n  u      v      true  oracle  ratio")
	var worst float64
	for i := 0; i < 10; i++ {
		u := repro.NodeID(r.Intn(g.NumNodes()))
		v := repro.NodeID(r.Intn(g.NumNodes()))
		truth := g.BFS(u)[v]
		est := oracle.Query(u, v)
		ratio := 0.0
		if truth > 0 {
			ratio = float64(est) / float64(truth)
			if ratio > worst {
				worst = ratio
			}
		}
		fmt.Printf("  %-6d %-6d %-5d %-7d %.2f\n", u, v, truth, est, ratio)
	}
	fmt.Printf("\nworst sampled ratio: %.2f (upper bounds are certified; the\n", worst)
	fmt.Println("polylog guarantee kicks in for far-apart pairs)")
}
