// Social-network diameter estimation: the workload that motivates the
// paper's introduction — analytics over a massive small-world graph where
// per-round communication is the bottleneck. Compares the paper's
// estimator against the parallel-BFS and HADI baselines and reports the
// cost profile of each (rounds and message volume), the quantities that
// dominate wall-clock time on a real cluster.
//
// Run with:
//
//	go run ./examples/socialdiameter
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A preferential-attachment graph standing in for the paper's Twitter
	// snapshot: heavy-tailed degrees, small diameter.
	g := repro.BarabasiAlbert(100_000, 8, 7)
	fmt.Printf("social graph: n=%d m=%d\n", g.NumNodes(), g.NumEdges())

	// Paper's estimator.
	res, err := repro.ApproxDiameter(g, repro.DiameterOptions{
		Options: repro.Options{Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CLUSTER: %d <= ∆ <= %d   rounds=%-5d messages=%-10d %v\n",
		res.DeltaC, res.Upper, res.Stats.Rounds, res.Stats.Messages,
		res.Elapsed.Round(time.Millisecond))

	// BFS baseline (2·ecc upper bound).
	_, src := g.MaxDegree()
	bfs, err := repro.BFSDiameter(g, src, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFS:     %d <= ∆ <= %d   rounds=%-5d messages=%-10d %v\n",
		bfs.Lower, bfs.Upper, bfs.Stats.Rounds, bfs.Stats.Messages,
		bfs.Elapsed.Round(time.Millisecond))

	// HADI/ANF baseline: accurate but moves K words per edge per round.
	hadi, err := repro.ANFDiameter(g, repro.ANFOptions{K: 32, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HADI:    ∆ ~= %d (eff %.1f)  rounds=%-5d words=%-12d %v\n",
		hadi.DiameterEstimate, hadi.EffectiveDiameter, hadi.Rounds,
		hadi.MessagesWords, hadi.Elapsed.Round(time.Millisecond))

	fmt.Println("\nOn a small-diameter graph all three are cheap; append a long")
	fmt.Println("tail (see the paper's Figure 1) and the Θ(∆)-round baselines")
	fmt.Println("slow down linearly while CLUSTER does not:")

	tail := 10 * int(bfs.Lower)
	gt := repro.AppendTail(g, 0, tail)
	start := time.Now()
	res2, err := repro.ApproxDiameter(gt, repro.DiameterOptions{Options: repro.Options{Seed: 7}})
	if err != nil {
		log.Fatal(err)
	}
	clusterT := time.Since(start)
	bfs2, err := repro.BFSDiameter(gt, src, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with tail %d: CLUSTER rounds=%d (%v)  BFS rounds=%d (%v)\n",
		tail, res2.Stats.Rounds, clusterT.Round(time.Millisecond),
		bfs2.Stats.Rounds, bfs2.Elapsed.Round(time.Millisecond))
}
