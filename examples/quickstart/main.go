// Quickstart: decompose a graph with CLUSTER(τ), inspect the clustering,
// and bracket the graph's diameter with the quotient-graph estimator.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 200x200 mesh: 40,000 nodes, diameter 398, doubling dimension 2 —
	// the regime where the paper's algorithm provably shines.
	g := repro.Mesh(200, 200)
	fmt.Printf("graph: n=%d m=%d\n", g.NumNodes(), g.NumEdges())

	// Decompose into clusters with granularity parameter τ = 16. More τ
	// means more clusters with smaller radii.
	cl, err := repro.Cluster(g, 16, repro.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CLUSTER(16): %d clusters, max radius %d, %d growth rounds\n",
		cl.NumClusters(), cl.MaxRadius(), cl.GrowthSteps)

	// The clustering is a partition; every node knows its cluster and its
	// distance to the cluster center.
	u := repro.NodeID(12345)
	fmt.Printf("node %d -> cluster %d (center %d, %d hops)\n",
		u, cl.Owner[u], cl.Centers[cl.Owner[u]], cl.Dist[u])

	// Diameter estimation: certified bounds from the quotient graph. Note
	// how few rounds this takes compared to the ~400 a BFS would need.
	res, err := repro.ApproxDiameter(g, repro.DiameterOptions{
		Options: repro.Options{Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diameter: %d <= ∆ <= %d (true 398), quotient %d nodes, %d rounds\n",
		res.DeltaC, res.Upper, res.Quotient.NumNodes(), res.Stats.Rounds)
}
