// Query-service client: start a repro.Server in-process over a road-like
// graph, then drive it with many concurrent HTTP clients the way a
// production deployment of cmd/reprod would be driven, reporting
// throughput, latency, and the server's own /stats counters.
//
// Run with:
//
//	go run ./examples/serveclient
//
// To drive an external daemon instead (start one with
// `go run ./cmd/reprod -gen road:250x250 -name road`):
//
//	go run ./examples/serveclient -addr http://localhost:8080 -graph road
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/rng"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running reprod daemon (default: in-process server)")
	graphName := flag.String("graph", "road", "graph name to query")
	clients := flag.Int("clients", 32, "concurrent clients")
	queries := flag.Int("queries", 200, "queries per client")
	nodes := flag.Int("nodes", 62500, "node id range to sample (in-process default graph: 250x250 road)")
	flag.Parse()

	base := *addr
	if base == "" {
		// No daemon given: serve in-process, exactly what cmd/reprod does.
		g := repro.RoadLike(250, 250, 0.4, 5)
		srv := repro.NewServer(repro.ServeConfig{DefaultTau: 4})
		if err := srv.RegisterGraph(*graphName, g); err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		*nodes = g.NumNodes()
		fmt.Printf("in-process server over %q: n=%d m=%d\n", *graphName, g.NumNodes(), g.NumEdges())
	}

	// One throwaway request triggers (and waits for) the oracle build so
	// the measured run sees only O(1) lookups.
	warm := time.Now()
	if err := get(base + "/distance?graph=" + *graphName + "&u=0&v=1"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first query (incl. build): %v\n\n", time.Since(warm).Round(time.Millisecond))

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    []time.Duration
		failed  int
		started = time.Now()
	)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.New(uint64(id) + 1)
			local := make([]time.Duration, 0, *queries)
			localFailed := 0
			for q := 0; q < *queries; q++ {
				u := r.Intn(*nodes)
				v := r.Intn(*nodes)
				t0 := time.Now()
				err := get(fmt.Sprintf("%s/distance?graph=%s&u=%d&v=%d", base, *graphName, u, v))
				if err != nil {
					localFailed++
					continue
				}
				local = append(local, time.Since(t0))
			}
			// Merge per-client results once, outside the measured loop, so
			// the lock never perturbs individual latencies.
			mu.Lock()
			lats = append(lats, local...)
			failed += localFailed
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(started)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	total := len(lats)
	fmt.Printf("%d clients x %d queries: %d ok, %d failed in %v (%.0f qps)\n",
		*clients, *queries, total, failed, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	if total > 0 {
		fmt.Printf("latency p50=%v p95=%v p99=%v max=%v\n",
			lats[total/2].Round(time.Microsecond),
			lats[total*95/100].Round(time.Microsecond),
			lats[total*99/100].Round(time.Microsecond),
			lats[total-1].Round(time.Microsecond))
	}

	// Batch path: the same pair workload as one client, posted as
	// /distance-batch requests in both encodings. The effective pairs/sec
	// is what a bulk consumer (all-pairs sampling, evaluation sweeps) sees.
	runBatches(base, *graphName, *nodes)

	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	out, _ := json.MarshalIndent(stats, "", "  ")
	fmt.Printf("\nserver /stats:\n%s\n", out)
}

// runBatches posts the same random pairs through /distance-batch with the
// JSON and the dense binary encoding and prints the effective pairs/sec of
// each, next to the point-query throughput printed above.
func runBatches(base, graphName string, nodes int) {
	const (
		pairsPerBatch = 4096
		batches       = 25
	)
	r := rng.New(99)
	pairs := make([][2]int32, pairsPerBatch)
	for i := range pairs {
		pairs[i] = [2]int32{int32(r.Intn(nodes)), int32(r.Intn(nodes))}
	}
	jsonBody, err := json.Marshal(map[string]any{"pairs": pairs})
	if err != nil {
		log.Fatal(err)
	}
	frame := make([]byte, 8+8*len(pairs))
	copy(frame, "RPB1")
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(pairs)))
	for i, p := range pairs {
		binary.LittleEndian.PutUint32(frame[8+8*i:], uint32(p[0]))
		binary.LittleEndian.PutUint32(frame[8+8*i+4:], uint32(p[1]))
	}
	url := base + "/distance-batch?graph=" + graphName
	fmt.Printf("\nbatch path (%d batches x %d pairs):\n", batches, pairsPerBatch)
	for _, enc := range []struct {
		name        string
		contentType string
		body        []byte
	}{
		{"json", "application/json", jsonBody},
		{"binary", "application/x-reprod-pairs", frame},
	} {
		post := func() {
			resp, err := http.Post(url, enc.contentType, bytes.NewReader(enc.body))
			if err != nil {
				log.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("batch (%s): status %d", enc.name, resp.StatusCode)
			}
		}
		post() // warm the server's scratch pools
		t0 := time.Now()
		for i := 0; i < batches; i++ {
			post()
		}
		elapsed := time.Since(t0)
		fmt.Printf("  %-6s %8.2fms total, avg %6.0fµs/batch, %5.1fM pairs/sec\n",
			enc.name, float64(elapsed.Nanoseconds())/1e6,
			float64(elapsed.Microseconds())/batches,
			float64(pairsPerBatch)*batches/elapsed.Seconds()/1e6)
	}
}

func get(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d from %s", resp.StatusCode, url)
	}
	return nil
}
