// Package repro is a from-scratch Go reproduction of
//
//	Ceccarello, Pietracaprina, Pucci, Upfal:
//	"Space and Time Efficient Parallel Graph Decomposition, Clustering,
//	and Diameter Approximation" (SPAA 2015, arXiv:1407.3144).
//
// It provides the paper's parallel graph decomposition (CLUSTER and
// CLUSTER2), the derived k-center and diameter approximations, a linear-
// space approximate distance oracle, the competing algorithms of the
// evaluation (MPX random-shift decomposition, parallel BFS, HADI/ANF
// sketches), the execution substrates (a direction-optimizing BSP
// traversal engine with a persistent worker pool and hybrid top-down/
// bottom-up supersteps, plus a simulator of the MR(MG, ML) MapReduce
// model), synthetic graph
// generators, and the full experiment harness regenerating every table and
// figure of the paper. Beyond the batch pipeline it provides an online
// serving layer: a concurrent HTTP/JSON query service over the built
// artifacts (internal/serve, daemon cmd/reprod) with a binary snapshot
// codec (internal/snapshot) for instant restarts. See README.md for build,
// test, and usage instructions.
//
// This package is the public facade: it re-exports the pieces a downstream
// user needs, since the implementation lives under internal/. A typical
// session:
//
//	g := repro.Mesh(500, 500)
//	cl, err := repro.Cluster(g, 64, repro.Options{Seed: 1})
//	// cl.Owner, cl.Centers, cl.MaxRadius() ...
//
//	res, err := repro.ApproxDiameter(g, repro.DiameterOptions{})
//	// res.DeltaC <= true diameter <= res.Upper
package repro

import (
	"context"
	"io"

	"repro/internal/anf"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/gonzalez"
	"repro/internal/graph"
	"repro/internal/mpx"
	"repro/internal/pbfs"
	"repro/internal/quotient"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

// Graph types and construction.
type (
	// Graph is an immutable unweighted undirected graph in CSR form.
	Graph = graph.Graph
	// Weighted is an undirected graph with positive integer edge weights.
	Weighted = graph.Weighted
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
)

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an undirected edge list.
func FromEdges(n int, edges [][2]NodeID) *Graph { return graph.FromEdges(n, edges) }

// LoadEdgeList reads a graph from a text edge-list file.
func LoadEdgeList(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// SaveEdgeList writes a graph to a text edge-list file.
func SaveEdgeList(path string, g *Graph) error { return graph.SaveEdgeList(path, g) }

// Generators (synthetic benchmark graphs; see internal/graph for details).
var (
	Mesh           = graph.Mesh
	Path           = graph.Path
	Cycle          = graph.Cycle
	RoadLike       = graph.RoadLike
	BarabasiAlbert = graph.BarabasiAlbert
	RMAT           = graph.RMAT
	ErdosRenyi     = graph.ErdosRenyi
	RandomRegular  = graph.RandomRegular
	ExpanderPath   = graph.ExpanderPath
	WattsStrogatz  = graph.WattsStrogatz
	AppendTail     = graph.AppendTail
)

// Core decomposition API (Sections 3-4 of the paper).
type (
	// Options configures the randomized decompositions.
	Options = core.Options
	// Clustering is a decomposition into disjoint connected clusters.
	Clustering = core.Clustering
	// DiameterOptions configures ApproxDiameter.
	DiameterOptions = core.DiameterOptions
	// DiameterResult carries diameter bounds and run costs.
	DiameterResult = core.DiameterResult
	// KCenterResult is an approximate k-center solution.
	KCenterResult = core.KCenterResult
	// Oracle answers approximate distance queries in O(1).
	Oracle = core.Oracle
)

// WeightedClustering is a decomposition of a weighted graph that controls
// both the weighted radius and the hop radius of every cluster — the
// extension the paper's Section 7 poses as future work.
type WeightedClustering = core.WeightedClustering

// WeightedDiameterResult carries weighted-diameter bounds.
type WeightedDiameterResult = core.WeightedDiameterResult

// WeightedCluster decomposes a weighted graph with the CLUSTER(τ) batch
// schedule (the paper's Section 7 extension).
func WeightedCluster(wg *Weighted, tau int, opt Options) (*WeightedClustering, error) {
	return core.WeightedCluster(wg, tau, opt)
}

// ApproxDiameterWeighted extends the Section 4 diameter pipeline to
// weighted graphs, returning a certified upper bound.
func ApproxDiameterWeighted(wg *Weighted, tau int, opt Options) (*WeightedDiameterResult, error) {
	return core.ApproxDiameterWeighted(wg, tau, opt)
}

// NewWeighted builds a weighted graph from parallel edge/weight lists,
// rejecting mismatched lists, out-of-range endpoints, and non-positive
// weights.
func NewWeighted(n int, edges [][2]NodeID, weights []int32) (*Weighted, error) {
	return graph.NewWeighted(n, edges, weights)
}

// Cluster runs the paper's Algorithm 1 (CLUSTER(τ)).
func Cluster(g *Graph, tau int, opt Options) (*Clustering, error) {
	return core.Cluster(g, tau, opt)
}

// ClusterContext is Cluster with cooperative cancellation: the build
// checks ctx at superstep barriers and returns ctx.Err() within one round
// of a cancel. Every *Context variant below behaves the same way.
func ClusterContext(ctx context.Context, g *Graph, tau int, opt Options) (*Clustering, error) {
	return core.ClusterContext(ctx, g, tau, opt)
}

// Cluster2 runs the paper's Algorithm 2 (CLUSTER2(τ)).
func Cluster2(g *Graph, tau int, opt Options) (*Clustering, error) {
	return core.Cluster2(g, tau, opt)
}

// Cluster2Context is Cluster2 with cooperative cancellation.
func Cluster2Context(ctx context.Context, g *Graph, tau int, opt Options) (*Clustering, error) {
	return core.Cluster2Context(ctx, g, tau, opt)
}

// KCenter computes an O(log³n)-approximate k-center solution (Theorem 2).
func KCenter(g *Graph, k int, opt Options) (*KCenterResult, error) {
	return core.KCenter(context.Background(), g, k, opt)
}

// KCenterContext is KCenter with cooperative cancellation.
func KCenterContext(ctx context.Context, g *Graph, k int, opt Options) (*KCenterResult, error) {
	return core.KCenter(ctx, g, k, opt)
}

// ApproxDiameter estimates the diameter via the quotient graph of a
// decomposition (Section 4), returning certified bounds
// DeltaC <= ∆ <= Upper.
func ApproxDiameter(g *Graph, opt DiameterOptions) (*DiameterResult, error) {
	return core.ApproxDiameter(context.Background(), g, opt)
}

// ApproxDiameterContext is ApproxDiameter with cooperative cancellation.
func ApproxDiameterContext(ctx context.Context, g *Graph, opt DiameterOptions) (*DiameterResult, error) {
	return core.ApproxDiameter(ctx, g, opt)
}

// BuildOracle constructs the linear-space approximate distance oracle.
func BuildOracle(g *Graph, tau int, useCluster2 bool, opt Options) (*Oracle, error) {
	return core.BuildOracle(context.Background(), g, tau, useCluster2, opt)
}

// BuildOracleContext is BuildOracle with cooperative cancellation.
func BuildOracleContext(ctx context.Context, g *Graph, tau int, useCluster2 bool, opt Options) (*Oracle, error) {
	return core.BuildOracle(ctx, g, tau, useCluster2, opt)
}

// QuotientGraph builds the (unweighted) quotient graph of a clustering.
func QuotientGraph(cl *Clustering) (*Graph, error) {
	return quotient.Build(cl.G, cl.Owner, cl.NumClusters())
}

// Baselines.

// MPXOptions configures the Miller-Peng-Xu decomposition baseline.
type MPXOptions = mpx.Options

// MPXDecompose runs the MPX random-shift decomposition ([22]).
func MPXDecompose(g *Graph, opt MPXOptions) (*Clustering, error) {
	return mpx.Decompose(g, opt)
}

// BFSDiameter runs the parallel-BFS baseline: one BFS from src, reporting
// 2·ecc(src) as the diameter upper bound.
func BFSDiameter(g *Graph, src NodeID, workers int) (*pbfs.Result, error) {
	return pbfs.EstimateDiameter(g, src, workers)
}

// ANFOptions configures the HADI/ANF baseline.
type ANFOptions = anf.Options

// ANFResult is the HADI/ANF output.
type ANFResult = anf.Result

// ANFDiameter runs the HADI/ANF neighborhood-function estimator ([16,23]).
func ANFDiameter(g *Graph, opt ANFOptions) (*ANFResult, error) {
	return anf.Run(g, opt)
}

// HyperANFOptions configures the HyperLogLog-based ANF variant ([6]).
type HyperANFOptions = anf.HyperOptions

// HyperANFResult is the HyperANF output.
type HyperANFResult = anf.HyperResult

// HyperANFDiameter runs the HyperANF estimator (HyperLogLog registers,
// lower per-round volume than classic ANF at equal accuracy).
func HyperANFDiameter(g *Graph, opt HyperANFOptions) (*HyperANFResult, error) {
	return anf.HyperRun(g, opt)
}

// GonzalezKCenter runs the sequential greedy 2-approximation baseline.
func GonzalezKCenter(g *Graph, k int, start NodeID) ([]NodeID, int32, error) {
	return gonzalez.KCenter(g, k, start)
}

// Serving and persistence (internal/serve, internal/snapshot; daemon in
// cmd/reprod).
type (
	// Server is the concurrent graph-analytics query service: register
	// graphs, then serve distance / cluster-of / diameter / kcenter
	// queries over HTTP via Handler(), with cached single-flight artifact
	// builds and a bounded worker pool.
	Server = serve.Server
	// ServeConfig configures a Server.
	ServeConfig = serve.Config
	// ArtifactKey identifies a cached build artifact.
	ArtifactKey = serve.Key
	// ServeStats is the /stats counter snapshot.
	ServeStats = serve.Stats
	// SnapshotArtifact is the unit of snapshot persistence: a graph,
	// optionally its oracle, and the build metadata.
	SnapshotArtifact = snapshot.Artifact
	// SnapshotMeta identifies the build that produced an artifact.
	SnapshotMeta = snapshot.Meta
)

// NewServer returns an empty query server.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// Snapshot codec entry points: versioned, checksummed binary encoding of
// graph + oracle artifacts so a server restart skips the build.

// WriteSnapshot encodes an artifact to w.
func WriteSnapshot(w io.Writer, a *SnapshotArtifact) error { return snapshot.Write(w, a) }

// ReadSnapshot decodes an artifact, verifying checksum and structure.
func ReadSnapshot(r io.Reader) (*SnapshotArtifact, error) { return snapshot.Read(r) }

// SaveSnapshot atomically writes an artifact to the named file.
func SaveSnapshot(path string, a *SnapshotArtifact) error { return snapshot.Save(path, a) }

// LoadSnapshot reads an artifact from the named file.
func LoadSnapshot(path string) (*SnapshotArtifact, error) { return snapshot.Load(path) }

// Experiments (the paper's Section 6; see cmd/tables for the CLI).

// ExperimentConfig selects experiment scale, seed and parallelism.
type ExperimentConfig = expt.Config

// Experiment runners and renderers, re-exported for programmatic use.
var (
	Table1        = expt.Table1
	Table2        = expt.Table2
	Table3        = expt.Table3
	Table4        = expt.Table4
	Figure1       = expt.Figure1
	FormatTable1  = expt.FormatTable1
	FormatTable2  = expt.FormatTable2
	FormatTable3  = expt.FormatTable3
	FormatTable4  = expt.FormatTable4
	FormatFigure1 = expt.FormatFigure1
)
